// Package serve is the overload-robust multi-query serving layer: a
// deterministic multi-tenant query front-end that runs inside the simulator
// and drives the execution engine for a stream of concurrent queries.
//
// The paper measures how DS/QS/HY respond times degrade as server load
// rises; this layer asks the follow-on production question — what keeps the
// system upright when offered load exceeds capacity? Five mechanisms,
// composed in admission order:
//
//		arrival → token bucket → bounded queue → degradation level → worker
//		         (rate limit)   (admission)     (fresh/cached/static plan)
//		                                          ↓
//		                            exec.Session (deadline, breakers, budget)
//
//	  - Admission control: a token-bucket rate limiter in front of a bounded
//	    accept queue. Rejected queries are counted, not executed.
//	  - Deadline propagation: each admitted query carries a deadline drawn
//	    from its seedmix stream; exec aborts the in-flight attempt when it
//	    expires and the wasted work is accounted.
//	  - Per-site circuit breakers (breaker.go) wrap every fetch, so a crashed
//	    or stalled site sheds load instead of burning retries and timeouts.
//	  - A fleet-wide retry budget converts per-query exponential backoff into
//	    a system that cannot retry-storm itself during an outage.
//	  - Graceful degradation: under queue pressure new admissions downgrade
//	    from fresh optimization to a bounded plan cache, and past a second
//	    watermark to a cheap static plan, recovering by hysteresis.
//
// Everything runs on simulation processes — the kernel executes one process
// at a time in deterministic order — so all serving state is plain fields
// and every Result is DeepEqual-identical across GOMAXPROCS.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hybridship/internal/coherence"
	"hybridship/internal/exec"
	"hybridship/internal/plan"
	"hybridship/internal/seedmix"
	"hybridship/internal/sim"
)

// Stream tags of the serving layer's seedmix-derived randomness (seedProbe =
// 203 lives in breaker.go; the engine uses 101/102, faults 1–4).
const (
	seedArrival  int64 = 201
	seedDeadline int64 = 202
)

// Degradation levels: what a query admitted at that level costs to plan.
const (
	LevelFresh  = iota // full optimization, charged as OptInst client CPU
	LevelCached        // bounded plan cache; a miss pays OptInst, a hit PlanLookupFrac
	LevelStatic        // precompiled static plan, free
)

// PlanLookupFrac is the cost of a plan-cache hit as a fraction of OptInst.
const PlanLookupFrac = 0.01

// Config describes one serving run.
type Config struct {
	// Exec configures the shared execution engine (catalog, query, machine
	// park, optional fault injection). Exec.Seed also seeds the session.
	Exec exec.Config

	// Seed drives the serving layer's own streams: arrivals, per-query
	// deadline jitter, and breaker probe schedules.
	Seed int64

	NumQueries  int     // total offered queries
	ArrivalRate float64 // Poisson arrivals per virtual second

	// Deadline is the mean relative deadline; each query's own deadline is
	// jittered ±25% from its seedmix stream. 0 disables deadlines.
	Deadline float64

	MPL      int // admitted queries executing concurrently
	QueueCap int // bounded accept queue length

	// RateLimit is the token-bucket refill rate (queries/second); 0 disables
	// the limiter. Burst is the bucket capacity (default: 1).
	RateLimit float64
	Burst     int

	Breaker BreakerParams

	// RetryBudget caps fleet-wide granted retries at this fraction of the
	// queries started so far (e.g. 0.1 → retries ≤ 10% of requests).
	// 0 disables the budget.
	RetryBudget float64

	// Degradation watermarks on queue depth, with hysteresis: depth ≥
	// DegradeHi moves new admissions to the plan cache, depth ≥ StaticHi to
	// the static plan; recovery needs depth ≤ the matching Lo mark.
	// DegradeHi == 0 disables degradation (all admissions stay fresh).
	DegradeHi, DegradeLo int
	StaticHi, StaticLo   int

	// OptInst is the client-CPU cost (instructions) of one fresh query
	// optimization; what degradation saves.
	OptInst float64

	// Query classes: an admitted query belongs to class id%Classes and runs
	// FreshPlans[class] (also the plan-cache entry for that class). The
	// static fallback is StaticPlan for every class.
	Classes      int
	FreshPlans   []*plan.Node
	StaticPlan   *plan.Node
	PlanCacheCap int // bounded plan-cache capacity (default: Classes)

	// Updates makes the workload write-bearing: when it returns ok for an
	// admitted slot qi, the worker dirties pages [page0, page0+pages) of rel
	// through the coherence write protocol instead of executing the read
	// query. Requires Exec.Coherence with a finite LeaseDuration;
	// workload.WriteMix builds a deterministic one.
	Updates func(qi int) (rel string, page0, pages int, ok bool)

	// Disabled turns the serving layer off — every arrival is admitted
	// immediately with unbounded concurrency, fresh optimization, no
	// breakers and no retry budget — the collapse baseline of the overload
	// grid. Deadlines still apply: an overloaded system without admission
	// control does not get to ignore its clients' patience.
	Disabled bool
}

// Transition is one degradation-level change, for `csq run overload -v`.
type Transition struct {
	At       float64 // virtual time
	From, To int     // degradation levels
	Depth    int     // queue depth that triggered the change
}

// Result reports one serving run. Every field is deterministic: DeepEqual
// across GOMAXPROCS and repeated runs.
type Result struct {
	Offered       int64 // arrivals
	RejectedRate  int64 // shed by the token bucket
	RejectedQueue int64 // shed by the full accept queue
	Admitted      int64

	Completed int64 // finished within deadline
	Expired   int64 // deadline exceeded
	Failed    int64 // retry budget or retry cap exhausted

	FreshServed  int64 // admissions at LevelFresh
	CachedServed int64 // admissions at LevelCached
	StaticServed int64 // admissions at LevelStatic

	PlanCacheHits   int64
	PlanCacheMisses int64

	Retries        int64 // failed rounds observed by exec, all queries
	RetriesGranted int64 // retries the fleet budget granted

	AbortedWork float64 // virtual seconds of aborted attempts
	BackoffTime float64 // virtual seconds of completed backoff sleeps

	Elapsed float64 // virtual time when the simulation drained
	Goodput float64 // Completed / Elapsed, queries per virtual second

	// Response-time statistics over completed queries, measured from
	// arrival (queue wait included).
	MeanRT, P50RT, P99RT float64

	BreakerOpens int64 // total breaker open transitions across sites

	Transitions []Transition

	// Coherence-enabled runs (Exec.Coherence set); all zero otherwise.
	ShedClientDown   int64 // arrivals shed because their workstation was down
	FailedClientDown int64 // admitted work aborted by a client crash (⊂ Failed)
	Updates          int64 // admitted slots dispatched as writes
	UpdatesCommitted int64
	UpdatesBounded   int64   // committed at the lease bound with acks missing
	Invalidations    int64   // callback invalidations shipped before commits
	UpdateWaitTime   float64 // virtual time writers spent parked

	// Streams attributes per-client-stream load, separating the coherence
	// control traffic (callbacks, renewals) from the query traffic proper;
	// nil when coherence is off. Coherence is the protocol's own roll-up,
	// including the staleness oracle's verdict.
	Streams   []StreamStats
	Coherence *coherence.Summary
}

// StreamStats is one client stream's served load and coherence traffic. The
// callback-invalidation messages a stream receives (and acks) are protocol
// overhead charged to the shared network; reporting them per stream and
// separately from the stream's query count keeps overload diagnostics honest
// — a stream can be idle yet still generate callback traffic.
type StreamStats struct {
	Queries    int64 // read queries dispatched on this stream
	Updates    int64 // writes dispatched on this stream
	Completed  int64 // queries + updates that finished successfully
	ShedDown   int64 // arrivals shed while the workstation was down
	FailedDown int64 // admitted work aborted by a client crash

	// From the coherence protocol state (coherence.ClientStats).
	CacheHitPages  int64
	CacheMissPages int64
	LeaseRenewals  int64
	CallbackMsgs   int64 // invalidations + acks on this stream, not query traffic
	CallbackBytes  int64
}

// task is one admitted query riding the accept queue.
type task struct {
	id       int
	class    int
	client   int // client cache stream (id % NumClients; 0 without coherence)
	arrival  float64
	deadline float64 // absolute; 0 = none
	level    int
}

// admission is the token-bucket + bounded-queue decision state, factored out
// so the fast path (one comparison and two multiplications, no allocation)
// can be benchmarked in isolation.
type admission struct {
	rate   float64 // tokens per second; 0 disables the bucket
	burst  float64
	tokens float64
	at     float64 // last refill time
}

// Admission verdicts.
const (
	admitOK = iota
	admitShedRate
	admitShedQueue
)

// allow refills the bucket to now and decides one arrival given the current
// queue depth; on admitOK the token is consumed.
func (a *admission) allow(now float64, depth, queueCap int) int {
	if a.rate > 0 {
		a.tokens += (now - a.at) * a.rate
		if a.tokens > a.burst {
			a.tokens = a.burst
		}
		a.at = now
		if a.tokens < 1 {
			return admitShedRate
		}
	}
	if depth >= queueCap {
		return admitShedQueue
	}
	if a.rate > 0 {
		a.tokens--
	}
	return admitOK
}

// planCache is the bounded LRU of compiled plans, keyed by query class. A
// linear scan over at most PlanCacheCap entries keeps it allocation-free and
// trivially deterministic.
type planCache struct {
	cap   int
	order []int // class ids, most recently used last
}

func (c *planCache) hit(class int) bool {
	for i, id := range c.order {
		if id == class {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), class)
			return true
		}
	}
	return false
}

func (c *planCache) insert(class int) {
	c.order = append(c.order, class)
	if len(c.order) > c.cap {
		c.order = c.order[1:]
	}
}

// retryBudget implements exec.RetryGate: grant-if-under-budget, so granted
// retries can never exceed ratio × requests at any point in the run.
type retryBudget struct {
	ratio    float64
	requests int64 // queries started
	granted  int64
}

func (b *retryBudget) AllowRetry() bool {
	if float64(b.granted+1) > b.ratio*float64(b.requests) {
		return false
	}
	b.granted++
	return true
}

// server is one serving run's mutable state. Only simulation processes touch
// it, one at a time.
type server struct {
	cfg     Config
	ses     *exec.Session
	sm      *sim.Simulator
	queue   *sim.Buffer
	adm     admission
	cache   planCache
	budget  *retryBudget
	brk     *BreakerSet
	level   int
	freshB  []plan.Binding
	staticB plan.Binding
	res     Result
	rts     []float64
	streams []StreamStats // per client stream; nil without coherence
}

// Server is a constructed serving run whose simulation the caller drives: a
// fleet driver places several of them on the shards of a coordinator (via
// Exec.Kernel), runs the shared kernels, then collects each one's Result.
// For the ordinary single-instance case use Run, which owns the kernel.
type Server struct {
	s *server
}

// Run executes one serving run to completion and returns its metrics.
func Run(cfg Config) (Result, error) {
	sv, err := Start(cfg)
	if err != nil {
		return Result{}, err
	}
	return sv.Finish(sv.s.ses.Run()), nil
}

// Start validates cfg, builds the session (on Exec.Kernel if set) and spawns
// the arrival and worker processes. The simulation has not advanced yet; the
// caller drives the kernel and then calls Finish.
func Start(cfg Config) (*Server, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	s := &server{cfg: cfg}
	var opts exec.SessionOptions
	if !cfg.Disabled {
		if cfg.RetryBudget > 0 {
			s.budget = &retryBudget{ratio: cfg.RetryBudget}
			opts.Retry = s.budget
		}
		// The breaker clock reads the session's simulator through s.sm,
		// which is set right after the session is built.
		s.brk = NewBreakerSet(func() float64 { return s.sm.Now() },
			cfg.Exec.Catalog.NumServers, cfg.Seed, cfg.Breaker)
		opts.Gate = s.brk
	}
	ses, err := exec.NewSession(cfg.Exec, opts)
	if err != nil {
		return nil, err
	}
	s.ses = ses
	s.sm = ses.Simulator()
	for _, root := range cfg.FreshPlans {
		b, err := s.ses.Bind(root)
		if err != nil {
			return nil, err
		}
		s.freshB = append(s.freshB, b)
	}
	s.staticB, err = s.ses.Bind(cfg.StaticPlan)
	if err != nil {
		return nil, err
	}
	s.adm = admission{rate: cfg.RateLimit, burst: float64(burst(cfg)), tokens: float64(burst(cfg))}
	s.cache = planCache{cap: cacheCap(cfg)}
	if c := cfg.Exec.Coherence; c != nil {
		s.streams = make([]StreamStats, c.NumClients)
	}

	if cfg.Disabled {
		s.spawnOpenLoop()
	} else {
		s.queue = sim.NewBuffer(s.sm, "serve:accept", cfg.QueueCap)
		s.spawnArrivals()
		s.spawnWorkers()
	}
	return &Server{s: s}, nil
}

// Session exposes the underlying exec session, for fleet drivers that place
// the server on a shared kernel and extract per-group engine stats.
func (sv *Server) Session() *exec.Session { return sv.s.ses }

// Completed reports the number of queries finished within deadline so far —
// live state a progress ticker may sample mid-run.
func (sv *Server) Completed() int64 { return sv.s.res.Completed }

// Done reports whether every offered query has reached a terminal state
// (completed, expired, failed, or shed at admission). Once true it stays
// true: the server's remaining work is zero.
func (sv *Server) Done() bool {
	r := &sv.s.res
	return r.Completed+r.Expired+r.Failed+r.RejectedRate+r.RejectedQueue+r.ShedClientDown == int64(sv.s.cfg.NumQueries)
}

// Finish derives the run's summary statistics and returns the Result. The
// caller passes the run's elapsed virtual time — the kernel's final time for
// a standalone run, or the fleet-wide completion time for a sharded one (a
// shard's own final clock depends on how far its last window overshot, so it
// is not a fleet-level observable).
func (sv *Server) Finish(elapsed float64) Result {
	sv.s.res.Elapsed = elapsed
	sv.s.finish()
	return sv.s.res
}

func validate(cfg *Config) error {
	switch {
	case cfg.NumQueries <= 0:
		return fmt.Errorf("serve: NumQueries must be positive")
	case cfg.ArrivalRate <= 0:
		return fmt.Errorf("serve: ArrivalRate must be positive")
	case cfg.Classes <= 0 || len(cfg.FreshPlans) != cfg.Classes:
		return fmt.Errorf("serve: need exactly Classes fresh plans")
	case cfg.StaticPlan == nil:
		return fmt.Errorf("serve: need a static fallback plan")
	}
	if !cfg.Disabled {
		if cfg.MPL <= 0 {
			return fmt.Errorf("serve: MPL must be positive")
		}
		if cfg.QueueCap <= 0 {
			return fmt.Errorf("serve: QueueCap must be positive")
		}
	}
	if cfg.DegradeHi > 0 {
		if cfg.DegradeLo >= cfg.DegradeHi || cfg.StaticLo >= cfg.StaticHi || cfg.StaticHi < cfg.DegradeHi {
			return fmt.Errorf("serve: watermarks need Lo < Hi and DegradeHi <= StaticHi")
		}
	}
	if cfg.Updates != nil {
		if c := cfg.Exec.Coherence; c == nil || c.LeaseDuration <= 0 {
			return fmt.Errorf("serve: updates require coherence with a finite lease duration")
		}
	}
	return nil
}

func burst(cfg Config) int {
	if cfg.Burst <= 0 {
		return 1
	}
	return cfg.Burst
}

func cacheCap(cfg Config) int {
	if cfg.PlanCacheCap <= 0 {
		return cfg.Classes
	}
	return cfg.PlanCacheCap
}

// unit maps a seedmix stream value into [0, 1).
func unit(v int64) float64 { return float64(uint64(v)) / (1 << 63) }

// deadlineAt draws query qi's absolute deadline: the mean relative deadline
// jittered ±25% by the query's seedmix stream.
func (s *server) deadlineAt(now float64, qi int) float64 {
	if s.cfg.Deadline <= 0 {
		return 0
	}
	u := unit(seedmix.Derive(s.cfg.Seed, seedDeadline, int64(qi)))
	return now + s.cfg.Deadline*(0.75+0.5*u)
}

// spawnArrivals starts the Poisson arrival process feeding admission.
func (s *server) spawnArrivals() {
	delays := arrivalDelays(s.cfg)
	s.sm.Spawn("serve:arrivals", func(p *sim.Proc) {
		for i, d := range delays {
			p.Hold(d)
			s.arrive(p, i)
		}
		s.queue.Close()
	})
}

// spawnOpenLoop is the Disabled baseline: the same arrival stream, but every
// query is admitted instantly on its own process — unbounded concurrency,
// always-fresh optimization, no gates.
func (s *server) spawnOpenLoop() {
	delays := arrivalDelays(s.cfg)
	s.sm.Spawn("serve:arrivals", func(p *sim.Proc) {
		for i, d := range delays {
			p.Hold(d)
			now := s.sm.Now()
			s.res.Offered++
			client := s.clientFor(i)
			if s.shedDown(client) {
				continue
			}
			s.res.Admitted++
			s.res.FreshServed++
			t := task{id: i, class: i % s.cfg.Classes, client: client, arrival: now, deadline: s.deadlineAt(now, i), level: LevelFresh}
			s.sm.SpawnLazyID(queryName, int64(i), func(qp *sim.Proc) {
				s.execute(qp, t)
			})
		}
	})
}

// arrivalDelays precomputes the exponential inter-arrival gaps from the
// arrival seed stream, so enabled and disabled runs of the same seed offer
// the exact same load.
func arrivalDelays(cfg Config) []float64 {
	delays := make([]float64, cfg.NumQueries)
	for i := range delays {
		u := unit(seedmix.Derive(cfg.Seed, seedArrival, int64(i)))
		// Inverse-CDF exponential; clamp u away from 1 to keep it finite.
		if u > 0.999999 {
			u = 0.999999
		}
		delays[i] = expInv(u) / cfg.ArrivalRate
	}
	return delays
}

// expInv is -ln(1-u), the unit-rate exponential quantile.
func expInv(u float64) float64 {
	return -math.Log(1 - u)
}

// clientFor assigns arrivals round-robin to the coherence client streams.
func (s *server) clientFor(qi int) int {
	if len(s.streams) == 0 {
		return 0
	}
	return qi % len(s.streams)
}

// shedDown reports (and counts) an arrival whose workstation is down: a dead
// client cannot even submit its query, so the shed happens before the
// server-side rate limiter sees it and costs no token.
func (s *server) shedDown(client int) bool {
	coh := s.ses.Coherence()
	if coh == nil || coh.ClientUp(client) {
		return false
	}
	s.res.ShedClientDown++
	s.streams[client].ShedDown++
	return true
}

// arrive admits or sheds one arrival.
func (s *server) arrive(p *sim.Proc, qi int) {
	now := s.sm.Now()
	s.res.Offered++
	client := s.clientFor(qi)
	if s.shedDown(client) {
		return
	}
	depth := s.queue.Len()
	switch s.adm.allow(now, depth, s.cfg.QueueCap) {
	case admitShedRate:
		s.res.RejectedRate++
		return
	case admitShedQueue:
		s.res.RejectedQueue++
		return
	}
	lvl := s.admitLevel(now, depth)
	s.res.Admitted++
	switch lvl {
	case LevelFresh:
		s.res.FreshServed++
	case LevelCached:
		s.res.CachedServed++
	default:
		s.res.StaticServed++
	}
	s.queue.Put(p, task{
		id: qi, class: qi % s.cfg.Classes, client: client, arrival: now,
		deadline: s.deadlineAt(now, qi), level: lvl,
	})
}

// admitLevel applies the watermark/hysteresis controller to the pre-enqueue
// queue depth and records any level change.
func (s *server) admitLevel(now float64, depth int) int {
	if s.cfg.DegradeHi <= 0 {
		return LevelFresh
	}
	lvl := s.level
	// Escalate under pressure…
	if depth >= s.cfg.StaticHi {
		lvl = LevelStatic
	} else if depth >= s.cfg.DegradeHi && lvl == LevelFresh {
		lvl = LevelCached
	}
	// …and recover only once the queue has drained past the low marks.
	if lvl == LevelStatic && depth <= s.cfg.StaticLo {
		lvl = LevelCached
	}
	if lvl == LevelCached && depth <= s.cfg.DegradeLo {
		lvl = LevelFresh
	}
	if lvl != s.level {
		s.res.Transitions = append(s.res.Transitions, Transition{At: now, From: s.level, To: lvl, Depth: depth})
		s.level = lvl
	}
	return lvl
}

// queryName and workerName are static lazy-name formatters (SpawnLazyID), so
// these spawn sites capture nothing for the name.
func queryName(id int64) string  { return fmt.Sprintf("serve:q%d", id) }
func workerName(id int64) string { return fmt.Sprintf("serve:worker%d", id) }

// spawnWorkers starts the MPL executor processes draining the accept queue.
func (s *server) spawnWorkers() {
	for w := 0; w < s.cfg.MPL; w++ {
		s.sm.SpawnLazyID(workerName, int64(w), func(p *sim.Proc) {
			for {
				v, ok := s.queue.Get(p)
				if !ok {
					return
				}
				s.execute(p, v.(task))
			}
		})
	}
}

// execute plans (at the admitted degradation level) and runs one query — or
// dispatches the slot as a write when the update mix claims it.
func (s *server) execute(p *sim.Proc, t task) {
	if s.cfg.Updates != nil {
		if rel, pg0, n, ok := s.cfg.Updates(t.id); ok {
			s.executeUpdate(p, t, rel, pg0, n)
			return
		}
	}
	if len(s.streams) > 0 {
		s.streams[t.client].Queries++
	}
	root, binding := s.planFor(p, t)
	if s.budget != nil {
		s.budget.requests++
	}
	qr, err := s.ses.Execute(p, t.id, root, binding, exec.QueryOpts{Deadline: t.deadline, Client: t.client})
	s.res.Retries += qr.Retries
	s.res.AbortedWork += qr.AbortedWork
	s.res.BackoffTime += qr.BackoffTime
	switch {
	case err == nil:
		s.res.Completed++
		s.rts = append(s.rts, s.sm.Now()-t.arrival)
		if len(s.streams) > 0 {
			s.streams[t.client].Completed++
		}
	case isDeadline(err):
		s.res.Expired++
	default:
		s.res.Failed++
		if errors.Is(err, exec.ErrClientDown) {
			s.res.FailedClientDown++
			s.streams[t.client].FailedDown++
		}
	}
}

// executeUpdate runs one write slot through the coherence protocol. Updates
// skip planning (no optimizer work beyond the submission message) and have no
// deadline: their wait is bounded by the lease duration instead.
func (s *server) executeUpdate(p *sim.Proc, t task, rel string, pg0, n int) {
	s.res.Updates++
	s.streams[t.client].Updates++
	ur, err := s.ses.ExecuteUpdate(p, t.client, rel, pg0, n)
	s.res.UpdateWaitTime += ur.WaitTime
	s.res.Invalidations += int64(ur.Invalidations)
	if ur.BoundExpired {
		s.res.UpdatesBounded++
	}
	if err != nil {
		s.res.Failed++
		if errors.Is(err, exec.ErrClientDown) {
			s.res.FailedClientDown++
			s.streams[t.client].FailedDown++
		}
		return
	}
	s.res.UpdatesCommitted++
	s.res.Completed++
	s.streams[t.client].Completed++
	s.rts = append(s.rts, s.sm.Now()-t.arrival)
}

// planFor returns the plan the query runs, charging the client CPU for the
// planning work its degradation level implies.
func (s *server) planFor(p *sim.Proc, t task) (*plan.Node, plan.Binding) {
	switch t.level {
	case LevelFresh:
		s.ses.ChargeClientCPU(p, s.cfg.OptInst)
		return s.cfg.FreshPlans[t.class], s.freshB[t.class]
	case LevelCached:
		if s.cache.hit(t.class) {
			s.res.PlanCacheHits++
			s.ses.ChargeClientCPU(p, s.cfg.OptInst*PlanLookupFrac)
		} else {
			s.res.PlanCacheMisses++
			s.ses.ChargeClientCPU(p, s.cfg.OptInst)
			s.cache.insert(t.class)
		}
		return s.cfg.FreshPlans[t.class], s.freshB[t.class]
	default:
		return s.cfg.StaticPlan, s.staticB
	}
}

// finish derives the summary statistics once the simulation has drained.
func (s *server) finish() {
	if s.budget != nil {
		s.res.RetriesGranted = s.budget.granted
	}
	if coh := s.ses.Coherence(); coh != nil {
		sum := coh.Summary()
		s.res.Coherence = sum
		for c := range s.streams {
			cs := sum.PerClient[c]
			s.streams[c].CacheHitPages = cs.CacheHitPages
			s.streams[c].CacheMissPages = cs.CacheMissPages
			s.streams[c].LeaseRenewals = cs.LeaseRenewals
			s.streams[c].CallbackMsgs = cs.CallbackMsgs
			s.streams[c].CallbackBytes = cs.CallbackBytes
		}
		s.res.Streams = s.streams
	}
	if s.brk != nil {
		for site := 0; site < s.ses.NumServers(); site++ {
			s.res.BreakerOpens += s.brk.Opened(site)
		}
	}
	if s.res.Elapsed > 0 {
		s.res.Goodput = float64(s.res.Completed) / s.res.Elapsed
	}
	if len(s.rts) == 0 {
		return
	}
	sort.Float64s(s.rts)
	var sum float64
	for _, rt := range s.rts {
		sum += rt
	}
	s.res.MeanRT = sum / float64(len(s.rts))
	s.res.P50RT = percentile(s.rts, 0.50)
	s.res.P99RT = percentile(s.rts, 0.99)
}

// percentile returns the q-quantile of sorted samples (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func isDeadline(err error) bool {
	return errors.Is(err, exec.ErrDeadlineExceeded)
}
