package serve

import (
	"reflect"
	"runtime"
	"testing"

	"hybridship/internal/exec"
)

// clock is a settable test clock for the breaker's now() hook.
type clock struct{ t float64 }

func (c *clock) now() float64       { return c.t }
func (c *clock) advance(dt float64) { c.t += dt }

// Step opcodes for the table-driven state-machine tests.
const (
	opFail  = iota // ReportFailure(site, role)
	opSucc         // ReportSuccess(site, role)
	opAllow        // Allow(site, role), check the returned verdict
	opShed         // Shed(site, role), check the returned verdict
)

type step struct {
	advance   float64 // move the clock first
	op        int
	site      int
	role      int
	want      bool // for opAllow / opShed
	wantState int  // breaker state after the step
}

func TestBreakerStateMachine(t *testing.T) {
	// Cooldown 1 with jitter in [0.75, 1.25): advancing by 1.25 is always
	// past the probe time, advancing by 0.5 never is.
	params := BreakerParams{Threshold: 3, Cooldown: 1, ProbeTimeout: 2}
	cases := []struct {
		name  string
		steps []step
	}{
		{"closed stays closed below threshold", []step{
			{op: opAllow, want: true, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opAllow, want: true, wantState: StateClosed},
			{op: opShed, want: false, wantState: StateClosed},
		}},
		{"threshold consecutive failures open", []step{
			{op: opFail, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opFail, wantState: StateOpen},
			{op: opAllow, want: false, wantState: StateOpen},
			{op: opShed, want: true, wantState: StateOpen},
		}},
		{"success resets the consecutive count", []step{
			{op: opFail, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opSucc, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opFail, wantState: StateClosed},
			{op: opAllow, want: true, wantState: StateClosed},
		}},
		{"probe granted once after cooldown, success closes", []step{
			{op: opFail}, {op: opFail}, {op: opFail, wantState: StateOpen},
			{advance: 0.5, op: opAllow, want: false, wantState: StateOpen},
			{advance: 0.75, op: opAllow, want: true, wantState: StateHalfOpen},
			{op: opShed, want: false, wantState: StateHalfOpen}, // the probe must run
			{op: opAllow, want: false, wantState: StateHalfOpen},
			{op: opSucc, wantState: StateClosed},
			{op: opAllow, want: true, wantState: StateClosed},
		}},
		{"probe failure re-opens", []step{
			{op: opFail}, {op: opFail}, {op: opFail, wantState: StateOpen},
			{advance: 1.25, op: opAllow, want: true, wantState: StateHalfOpen},
			{op: opFail, wantState: StateOpen},
			{op: opAllow, want: false, wantState: StateOpen},
			{advance: 1.25, op: opAllow, want: true, wantState: StateHalfOpen},
		}},
		{"stuck probe slot is reclaimed after ProbeTimeout", []step{
			{op: opFail}, {op: opFail}, {op: opFail, wantState: StateOpen},
			{advance: 1.25, op: opAllow, want: true, wantState: StateHalfOpen},
			{advance: 1.0, op: opAllow, want: false, wantState: StateHalfOpen},
			{advance: 1.0, op: opAllow, want: true, wantState: StateHalfOpen}, // 2.0 past the grant
		}},
		{"failures only charge their own site", []step{
			{op: opFail, site: 1}, {op: opFail, site: 1}, {op: opFail, site: 1, wantState: StateOpen},
			{op: opAllow, site: 0, want: true, wantState: StateClosed},
		}},
		{"failures only charge their own role", []step{
			{op: opFail, role: exec.RoleSecondary},
			{op: opFail, role: exec.RoleSecondary},
			{op: opFail, role: exec.RoleSecondary, wantState: StateOpen},
			{op: opAllow, role: exec.RolePrimary, want: true, wantState: StateClosed},
			{op: opShed, role: exec.RolePrimary, want: false, wantState: StateClosed},
		}},
		{"secondary recovery leaves the primary breaker open", []step{
			{op: opFail}, {op: opFail}, {op: opFail, wantState: StateOpen},
			{op: opSucc, role: exec.RoleSecondary, wantState: StateOpen},
			{op: opAllow, want: false, wantState: StateOpen},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &clock{}
			b := NewBreakerSet(clk.now, 2, 42, params)
			for i, st := range tc.steps {
				clk.advance(st.advance)
				var got, checked bool
				switch st.op {
				case opFail:
					b.ReportFailure(st.site, st.role)
				case opSucc:
					b.ReportSuccess(st.site, st.role)
				case opAllow:
					got, checked = b.Allow(st.site, st.role), true
				case opShed:
					got, checked = b.Shed(st.site, st.role), true
				}
				if checked && got != st.want {
					t.Fatalf("step %d: verdict = %v, want %v", i, got, st.want)
				}
				// wantState always refers to the breaker named by the step,
				// so cross-role cases read back the role they exercised —
				// except the two probes above, which check the primary.
				checkRole := st.role
				if tc.name == "secondary recovery leaves the primary breaker open" {
					checkRole = exec.RolePrimary
				}
				if b.State(st.site, checkRole) != st.wantState {
					t.Fatalf("step %d: state = %d, want %d", i, b.State(st.site, checkRole), st.wantState)
				}
			}
		})
	}
}

// TestBreakerProbeTimesDeterministic: the seeded probe schedule is a pure
// function of (seed, site, role, opened-count) — identical across GOMAXPROCS
// and jittered within [0.75, 1.25)×Cooldown. The secondary-role stream must
// differ from the primary stream (separate seed tags).
func TestBreakerProbeTimesDeterministic(t *testing.T) {
	schedule := func(role int) []float64 {
		clk := &clock{}
		b := NewBreakerSet(clk.now, 3, 7, BreakerParams{Threshold: 1, Cooldown: 1})
		var out []float64
		for round := 0; round < 5; round++ {
			for site := 0; site < 3; site++ {
				b.ReportFailure(site, role) // threshold 1: opens immediately
				out = append(out, b.at(site, role).probeAt-clk.t)
				clk.advance(2)
				if !b.Allow(site, role) {
					t.Fatalf("probe not due 2s after opening (cooldown jitter must stay below 1.25)")
				}
				b.ReportSuccess(site, role)
			}
		}
		return out
	}

	prev := runtime.GOMAXPROCS(1)
	one := schedule(exec.RolePrimary)
	runtime.GOMAXPROCS(8)
	eight := schedule(exec.RolePrimary)
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("probe schedules diverge across GOMAXPROCS:\n got %v\nwant %v", eight, one)
	}
	for i, d := range one {
		if d < 0.75 || d >= 1.25 {
			t.Errorf("probe delay %d = %g outside the jitter window [0.75, 1.25)", i, d)
		}
	}
	// The jitter must actually vary across sites and rounds.
	allSame := true
	for _, d := range one[1:] {
		if d != one[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("every probe delay identical: jitter stream not wired")
	}

	secondary := schedule(exec.RoleSecondary)
	if reflect.DeepEqual(one, secondary) {
		t.Error("secondary-role probe schedule identical to primary: role tag not wired")
	}
	for i, d := range secondary {
		if d < 0.75 || d >= 1.25 {
			t.Errorf("secondary probe delay %d = %g outside the jitter window [0.75, 1.25)", i, d)
		}
	}
}

func TestBreakerZeroAllocChecks(t *testing.T) {
	clk := &clock{}
	b := NewBreakerSet(clk.now, 1, 1, BreakerParams{})
	if n := testing.AllocsPerRun(1000, func() {
		b.Allow(0, exec.RolePrimary)
		b.Shed(0, exec.RolePrimary)
		b.Allow(0, exec.RoleSecondary)
		b.Shed(0, exec.RoleSecondary)
	}); n != 0 {
		t.Errorf("Allow+Shed allocate %v per call, want 0", n)
	}
}
