package serve

import "hybridship/internal/seedmix"

// Per-(site, role) circuit breakers, the serving layer's protection against
// burning retries on a crashed or stalled site. A site that is healthy as a
// replica source may be failing as a primary (or vice versa), so each site
// carries one breaker per dependency role (exec.RolePrimary /
// exec.RoleSecondary); on an unreplicated catalog only the primary-role
// breakers ever see traffic, reproducing the legacy per-site behaviour
// bit-for-bit. Each breaker is the classic three-state machine:
//
//	closed    — requests flow; Threshold consecutive failures open it.
//	open      — requests are shed until the probe time, scheduled a seeded
//	            jittered Cooldown in the future so breakers opened by the
//	            same crash do not probe in lockstep.
//	half-open — exactly one probe attempt is admitted; its success closes
//	            the breaker, its failure re-opens it. A probe that neither
//	            reports back within ProbeTimeout (e.g. its query died on an
//	            unrelated deadline) releases the slot so the breaker cannot
//	            wedge.
//
// All methods are called from simulation processes, one at a time and in
// deterministic kernel order, so plain fields need no synchronization and
// the state trajectory is identical across GOMAXPROCS.

// seedProbe tags the probe-jitter stream within the serving layer's seed
// space (seedArrival = 201 and seedDeadline = 202 are the neighbors).
// Secondary-role breakers jitter from their own tag so the primary stream
// stays bit-identical to the pre-replication serving layer.
const (
	seedProbe          int64 = 203
	seedProbeSecondary int64 = 204
)

// numBreakerRoles mirrors exec's role count (RolePrimary, RoleSecondary).
const numBreakerRoles = 2

// BreakerParams configures every site's breaker.
type BreakerParams struct {
	Threshold    int     // consecutive failures that open the breaker (default 3)
	Cooldown     float64 // mean open→probe delay, seconds (default 1)
	ProbeTimeout float64 // half-open slot reclaim time (default 2×Cooldown)
}

func (p BreakerParams) threshold() int {
	if p.Threshold <= 0 {
		return 3
	}
	return p.Threshold
}

func (p BreakerParams) cooldown() float64 {
	if p.Cooldown <= 0 {
		return 1
	}
	return p.Cooldown
}

func (p BreakerParams) probeTimeout() float64 {
	if p.ProbeTimeout <= 0 {
		return 2 * p.cooldown()
	}
	return p.ProbeTimeout
}

// Breaker states.
const (
	StateClosed = iota
	StateOpen
	StateHalfOpen
)

type breaker struct {
	state   int
	fails   int     // consecutive failures while closed
	probeAt float64 // open: when the next probe becomes due
	probeBy float64 // half-open: when the outstanding probe slot is reclaimed
	opened  int64   // how many times this breaker opened (also jitter stream position)
}

// BreakerSet implements exec.SiteGate: one breaker per (server site, role).
type BreakerSet struct {
	now   func() float64
	seed  int64
	p     BreakerParams
	sites []breaker // indexed site*numBreakerRoles + role
}

// NewBreakerSet builds breakers for the given number of sites. now supplies
// the current virtual time (the simulator's clock in production, a test
// clock in unit tests); seed drives the probe-schedule jitter.
func NewBreakerSet(now func() float64, sites int, seed int64, p BreakerParams) *BreakerSet {
	return &BreakerSet{now: now, seed: seed, p: p, sites: make([]breaker, sites*numBreakerRoles)}
}

func (b *BreakerSet) at(site, role int) *breaker {
	return &b.sites[site*numBreakerRoles+role]
}

// probeDelay is the jittered cooldown before the n-th probe of the (site,
// role) breaker: Cooldown scaled into [0.75, 1.25) by its seeded jitter
// stream. Role 0 draws from the exact pre-replication per-site stream.
func (b *BreakerSet) probeDelay(site, role int, n int64) float64 {
	tag := seedProbe
	if role != 0 {
		tag = seedProbeSecondary
	}
	u := float64(uint64(seedmix.Derive(b.seed, tag, int64(site), n))) / (1 << 63)
	return b.p.cooldown() * (0.75 + 0.25*u)
}

// Allow reports whether a new attempt may depend on the site in the given
// role, transitioning open→half-open (and granting the single probe slot)
// when the probe is due.
func (b *BreakerSet) Allow(site, role int) bool {
	s := b.at(site, role)
	switch s.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now() < s.probeAt {
			return false
		}
		s.state = StateHalfOpen
		s.probeBy = b.now() + b.p.probeTimeout()
		return true
	default: // StateHalfOpen: one probe at a time, reclaiming stuck slots
		if b.now() >= s.probeBy {
			s.probeBy = b.now() + b.p.probeTimeout()
			return true
		}
		return false
	}
}

// Shed reports whether in-flight traffic to the site (in the given role)
// should be abandoned: only while hard-open (a due or outstanding probe must
// be able to run).
func (b *BreakerSet) Shed(site, role int) bool {
	s := b.at(site, role)
	return s.state == StateOpen && b.now() < s.probeAt
}

// ReportSuccess closes the breaker (a half-open probe succeeded, or traffic
// to a closed site completed) and clears the consecutive-failure count.
func (b *BreakerSet) ReportSuccess(site, role int) {
	s := b.at(site, role)
	s.fails = 0
	s.state = StateClosed
}

// ReportFailure records a failure attributed to the site in the given role:
// it re-opens a half-open breaker and opens a closed one at the failure
// threshold, each time scheduling the next probe a jittered cooldown away.
func (b *BreakerSet) ReportFailure(site, role int) {
	s := b.at(site, role)
	switch s.state {
	case StateHalfOpen:
		b.open(s, site, role)
	case StateClosed:
		s.fails++
		if s.fails >= b.p.threshold() {
			b.open(s, site, role)
		}
	}
	// Already open: late failure reports from attempts that were in flight
	// when the breaker tripped add no information.
}

func (b *BreakerSet) open(s *breaker, site, role int) {
	s.state = StateOpen
	s.fails = 0
	s.probeAt = b.now() + b.probeDelay(site, role, s.opened)
	s.opened++
}

// State returns the (site, role) breaker's current state (for tests and
// reporting).
func (b *BreakerSet) State(site, role int) int { return b.at(site, role).state }

// Opened returns how many times the site's breakers have opened, summed
// across roles (the serving layer reports one per-site counter).
func (b *BreakerSet) Opened(site int) int64 {
	var n int64
	for role := 0; role < numBreakerRoles; role++ {
		n += b.at(site, role).opened
	}
	return n
}
