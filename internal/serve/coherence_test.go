package serve

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"hybridship/internal/coherence"
	"hybridship/internal/faults"
	"hybridship/internal/plan"
	"hybridship/internal/workload"
)

// cohServeConfig is testConfig with per-client coherent caches and a
// deterministic write mix: 2 client streams, a finite lease, and both query
// classes planned DataShipping so the cached prefix is actually read through
// the client caches (QS scans are server-bound and never touch them).
func cohServeConfig(t testing.TB, writeFrac float64) Config {
	t.Helper()
	cfg := testConfig(t)
	cfg.Exec.Coherence = &coherence.Config{NumClients: 2, LeaseDuration: 2}
	cfg.FreshPlans = []*plan.Node{
		annotate(leftDeepChain(2), plan.DataShipping),
		annotate(leftDeepChain(2), plan.DataShipping),
	}
	cfg.StaticPlan = annotate(leftDeepChain(2), plan.QueryShipping)
	if writeFrac > 0 {
		mix := workload.WriteMix(cfg.Exec.Catalog, cfg.Seed, writeFrac)
		cfg.Updates = func(qi int) (string, int, int, bool) {
			op, ok := mix(qi)
			return op.Rel, op.Page0, op.Pages, ok
		}
	}
	return cfg
}

// TestServeCoherenceWriteMix: a write-bearing run commits updates, ships
// callback invalidations, attributes them per stream separately from query
// counts, and the staleness oracle holds every stale counter at zero.
func TestServeCoherenceWriteMix(t *testing.T) {
	cfg := cohServeConfig(t, 0.3)
	cfg.NumQueries = 40
	cfg.ArrivalRate = 2
	res := mustRun(t, cfg)

	if res.Offered != res.RejectedRate+res.RejectedQueue+res.ShedClientDown+res.Admitted {
		t.Errorf("admission identity violated: %+v", res)
	}
	if res.Admitted != res.Completed+res.Expired+res.Failed {
		t.Errorf("outcome identity violated: %+v", res)
	}
	if res.Updates == 0 || res.UpdatesCommitted == 0 {
		t.Fatalf("write mix dispatched %d updates, committed %d; want both > 0", res.Updates, res.UpdatesCommitted)
	}
	if res.Invalidations == 0 {
		t.Error("no callback invalidations despite concurrent readers and writers")
	}
	if res.Coherence == nil {
		t.Fatal("coherence summary missing")
	}
	if o := res.Coherence.Oracle; o.StaleReads != 0 || o.StaleCommittedReads != 0 {
		t.Errorf("staleness oracle tripped: %+v", o)
	}
	if o := res.Coherence.Oracle; o.CachedReads == 0 {
		t.Error("no cached reads; the client caches are not being exercised")
	}

	if len(res.Streams) != 2 {
		t.Fatalf("Streams = %d entries, want 2", len(res.Streams))
	}
	var q, u, cb int64
	for _, st := range res.Streams {
		q += st.Queries
		u += st.Updates
		cb += st.CallbackMsgs
	}
	if q+u != res.Admitted {
		t.Errorf("per-stream dispatch %d queries + %d updates != %d admitted", q, u, res.Admitted)
	}
	if u != res.Updates {
		t.Errorf("per-stream updates %d != %d total", u, res.Updates)
	}
	if cb == 0 {
		t.Error("invalidations shipped but no stream shows callback traffic")
	}
	for c, st := range res.Streams {
		if st.CallbackMsgs > 0 && st.CallbackBytes == 0 {
			t.Errorf("stream %d: callback messages without bytes: %+v", c, st)
		}
	}
}

// TestServeCoherenceCrashes: client crashes shed arrivals and fail in-flight
// work with attributed counters, site crashes expire leases mid-outage, and
// the oracle still proves no committed query read a stale page.
func TestServeCoherenceCrashes(t *testing.T) {
	run := func() Result {
		cfg := cohServeConfig(t, 0.25)
		cfg.NumQueries = 50
		cfg.ArrivalRate = 2
		cfg.Deadline = 15
		cfg.Exec.Faults = &faults.Config{
			Seed:     11,
			SiteMTBF: 12, SiteMTTR: 3, // outages outlast the 2s lease: expiry during outage
			ClientMTBF: 14, ClientMTTR: 4,
			FetchTimeout: 0.5, BackoffBase: 0.1, BackoffMax: 1,
		}
		return mustRun(t, cfg)
	}
	res := run()
	if res.ShedClientDown+res.FailedClientDown == 0 {
		t.Error("client crashes never shed or failed anything")
	}
	if res.FailedClientDown > res.Failed {
		t.Errorf("FailedClientDown %d exceeds Failed %d", res.FailedClientDown, res.Failed)
	}
	if res.Coherence == nil {
		t.Fatal("coherence summary missing")
	}
	if o := res.Coherence.Oracle; o.StaleReads != 0 || o.StaleCommittedReads != 0 {
		t.Errorf("staleness oracle tripped under crashes: %+v", o)
	}
	if res.Completed == 0 {
		t.Error("nothing completed; scenario is all failure, asserting little")
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Errorf("crash-heavy coherence run not reproducible:\n got %+v\nwant %+v", again, res)
	}
}

// TestServeCoherenceDeterministicAcrossGOMAXPROCS: the full coherent Result —
// streams, summary, oracle — is DeepEqual across parallelism settings.
func TestServeCoherenceDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() Result {
		cfg := cohServeConfig(t, 0.3)
		cfg.NumQueries = 30
		cfg.ArrivalRate = 3
		cfg.Exec.Faults = &faults.Config{
			Seed:       7,
			ClientMTBF: 10, ClientMTTR: 3,
			FetchTimeout: 0.5, BackoffBase: 0.1, BackoffMax: 1,
		}
		return mustRun(t, cfg)
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(one, eight) {
		t.Errorf("coherent serving run diverges across GOMAXPROCS:\n got %+v\nwant %+v", eight, one)
	}
}

// TestServeUpdatesValidation: an update mix without coherence, or with an
// infinite lease, is a config error — a writer could stall forever.
func TestServeUpdatesValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		coh  *coherence.Config
	}{
		{"no coherence", nil},
		{"infinite lease", &coherence.Config{NumClients: 2, LeaseDuration: 0}},
	} {
		cfg := testConfig(t)
		cfg.Exec.Coherence = tc.coh
		cfg.Updates = func(int) (string, int, int, bool) { return "R0", 0, 1, true }
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "finite lease") {
			t.Errorf("%s: err = %v, want finite-lease validation error", tc.name, err)
		}
	}
}
