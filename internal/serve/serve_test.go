package serve

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"hybridship/internal/exec"
	"hybridship/internal/faults"
	"hybridship/internal/plan"
	"hybridship/internal/workload"
)

// annotate assigns the first allowed annotation per Table 1 (same helper the
// exec tests use; DS: all client, QS: scans primary / joins inner).
func annotate(root *plan.Node, pol plan.Policy) *plan.Node {
	root.Walk(func(n *plan.Node) {
		n.Ann = plan.AllowedAnnotations(n.Kind, pol)[0]
	})
	return root
}

// leftDeepChain builds display(((R0 ⋈ R1) ⋈ R2) ⋈ ...).
func leftDeepChain(n int) *plan.Node {
	tree := plan.NewScan(workload.RelName(0))
	for i := 1; i < n; i++ {
		tree = plan.NewJoin(tree, plan.NewScan(workload.RelName(i)))
	}
	return plan.NewDisplay(tree)
}

// testConfig builds a 2-way, 1-server, 50%-cached serving config (the chaos
// grid's workload) with two query classes: a DS-planned class and a
// QS-planned class, falling back to the QS plan under degradation.
func testConfig(t testing.TB) Config {
	t.Helper()
	cat, err := workload.BuildCatalog(4096, 1, workload.PlaceRoundRobin(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.CacheAllFraction(cat, 0.5); err != nil {
		t.Fatal(err)
	}
	params := exec.DefaultParams()
	params.MaxAlloc = true
	return Config{
		Exec: exec.Config{
			Params:  params,
			Catalog: cat,
			Query:   workload.ChainQuery(2, workload.Moderate),
			Next:    workload.Next(workload.Moderate),
			Seed:    1,
		},
		Seed:        1996,
		NumQueries:  24,
		ArrivalRate: 1.0,
		Deadline:    30,
		MPL:         3,
		QueueCap:    5,
		RetryBudget: 0.25,
		DegradeHi:   2, DegradeLo: 0,
		StaticHi: 4, StaticLo: 1,
		OptInst: 10e6,
		Classes: 2,
		FreshPlans: []*plan.Node{
			annotate(leftDeepChain(2), plan.DataShipping),
			annotate(leftDeepChain(2), plan.QueryShipping),
		},
		StaticPlan: annotate(leftDeepChain(2), plan.QueryShipping),
	}
}

func mustRun(t testing.TB, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeCountersConsistent checks the accounting identities every run
// must satisfy: every arrival is rejected or admitted, every admission ends
// exactly one way, and every admission ran at exactly one level.
func TestServeCountersConsistent(t *testing.T) {
	res := mustRun(t, testConfig(t))
	if got := int64(testConfig(t).NumQueries); res.Offered != got {
		t.Errorf("Offered = %d, want %d", res.Offered, got)
	}
	if res.Offered != res.RejectedRate+res.RejectedQueue+res.Admitted {
		t.Errorf("admission identity violated: %+v", res)
	}
	if res.Admitted != res.Completed+res.Expired+res.Failed {
		t.Errorf("outcome identity violated: %+v", res)
	}
	if res.Admitted != res.FreshServed+res.CachedServed+res.StaticServed {
		t.Errorf("level identity violated: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("no query completed under a loose deadline")
	}
	if res.Goodput <= 0 || res.Elapsed <= 0 {
		t.Errorf("Goodput = %g, Elapsed = %g, want both positive", res.Goodput, res.Elapsed)
	}
	if res.P50RT <= 0 || res.P99RT < res.P50RT || res.MeanRT <= 0 {
		t.Errorf("degenerate RT stats: mean %g p50 %g p99 %g", res.MeanRT, res.P50RT, res.P99RT)
	}
}

// TestServeOverloadShedsAndDegrades: offered load far past capacity must
// fill the queue (rejections), trip the watermarks (degraded admissions,
// recorded transitions) and still complete what it admits.
func TestServeOverloadShedsAndDegrades(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumQueries = 40
	cfg.ArrivalRate = 20
	res := mustRun(t, cfg)
	if res.RejectedQueue == 0 {
		t.Error("full queue never rejected at 10x the service rate")
	}
	if res.CachedServed+res.StaticServed == 0 {
		t.Error("no degraded admissions under sustained queue pressure")
	}
	if len(res.Transitions) == 0 {
		t.Error("no degradation transitions recorded")
	}
	for i, tr := range res.Transitions {
		if tr.From == tr.To {
			t.Errorf("transition %d is a self-loop: %+v", i, tr)
		}
	}
}

// TestServeRateLimiterSheds: a token bucket refilling far below the arrival
// rate must shed by rate, before the queue fills.
func TestServeRateLimiterSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.ArrivalRate = 10
	cfg.RateLimit = 0.5
	cfg.Burst = 2
	res := mustRun(t, cfg)
	if res.RejectedRate == 0 {
		t.Error("token bucket never shed at 20x its refill rate")
	}
}

// TestServeDisabledAdmitsEverything: the collapse baseline admits every
// arrival at the fresh level with no shedding.
func TestServeDisabledAdmitsEverything(t *testing.T) {
	cfg := testConfig(t)
	cfg.Disabled = true
	res := mustRun(t, cfg)
	if res.Admitted != res.Offered || res.RejectedRate+res.RejectedQueue != 0 {
		t.Errorf("disabled serving shed arrivals: %+v", res)
	}
	if res.FreshServed != res.Offered {
		t.Errorf("disabled serving degraded admissions: %+v", res)
	}
	if res.RetriesGranted != 0 {
		t.Errorf("disabled serving has a retry budget: %+v", res)
	}
}

// TestServeRetryBudgetBound: under repeated crashes the granted retries can
// never exceed the configured fraction of started queries — the structural
// guarantee that prevents retry storms.
func TestServeRetryBudgetBound(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumQueries = 40
	cfg.ArrivalRate = 2
	cfg.Deadline = 12
	cfg.RetryBudget = 0.1
	cfg.Exec.Faults = &faults.Config{
		Seed:     11,
		SiteMTBF: 6, SiteMTTR: 1.5,
		FetchTimeout: 0.5, BackoffBase: 0.1, BackoffMax: 1,
	}
	res := mustRun(t, cfg)
	if res.Retries == 0 {
		t.Fatal("crash-heavy run recorded no failed rounds; the scenario is not exercising retries")
	}
	started := res.Admitted
	if float64(res.RetriesGranted) > cfg.RetryBudget*float64(started) {
		t.Errorf("RetriesGranted = %d exceeds budget %.0f%% of %d started",
			res.RetriesGranted, 100*cfg.RetryBudget, started)
	}
}

// TestServeBreakersOpenUnderCrashes: a crashing site must trip its breaker
// at least once in a crash-heavy run.
func TestServeBreakersOpenUnderCrashes(t *testing.T) {
	cfg := testConfig(t)
	cfg.NumQueries = 40
	cfg.ArrivalRate = 2
	cfg.Deadline = 12
	cfg.Breaker = BreakerParams{Threshold: 1, Cooldown: 0.5}
	cfg.Exec.Faults = &faults.Config{
		Seed:     11,
		SiteMTBF: 6, SiteMTTR: 1.5,
		FetchTimeout: 0.5, BackoffBase: 0.1, BackoffMax: 1,
	}
	res := mustRun(t, cfg)
	if res.BreakerOpens == 0 {
		t.Error("no breaker opened although the only server crashes repeatedly")
	}
}

// stormConfig is the interrupt-storm soak scenario: tight deadlines and
// frequent crashes, so nearly every query is torn down mid-flight through
// the kernel's interrupt machinery.
func stormConfig(t testing.TB) Config {
	cfg := testConfig(t)
	cfg.NumQueries = 60
	cfg.ArrivalRate = 6
	cfg.Deadline = 0.8 // well below the ~2s solo response time: everything expires
	cfg.Exec.Faults = &faults.Config{
		Seed:     5,
		SiteMTBF: 2, SiteMTTR: 0.5,
		FetchTimeout: 0.3, BackoffBase: 0.05, BackoffMax: 0.4,
	}
	return cfg
}

// TestServeInterruptStormSoak: the admission queue and the pooled kernel
// processes survive a run where interrupts dominate — no leaked goroutines
// after the simulation drains, and the whole Result reproduces exactly.
func TestServeInterruptStormSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	first := mustRun(t, stormConfig(t))
	if first.Expired == 0 {
		t.Fatal("storm scenario expired nothing; deadlines are not interrupting")
	}
	second := mustRun(t, stormConfig(t))
	if !reflect.DeepEqual(first, second) {
		t.Errorf("storm run not reproducible:\n got %+v\nwant %+v", second, first)
	}
	// The kernel terminates its pooled workers and daemons when Run drains;
	// give their goroutines a moment to unwind.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after two storm runs", before, runtime.NumGoroutine())
}

// TestServeDeterministicAcrossGOMAXPROCS: the full Result — counters,
// float totals, transitions — is DeepEqual across parallelism settings.
func TestServeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	overloaded := func() Result {
		cfg := testConfig(t)
		cfg.NumQueries = 40
		cfg.ArrivalRate = 8
		cfg.Deadline = 10
		cfg.Exec.Faults = &faults.Config{
			Seed:     11,
			SiteMTBF: 6, SiteMTTR: 1.5,
			FetchTimeout: 0.5, BackoffBase: 0.1, BackoffMax: 1,
		}
		return mustRun(t, cfg)
	}
	prev := runtime.GOMAXPROCS(1)
	one := overloaded()
	runtime.GOMAXPROCS(8)
	eight := overloaded()
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(one, eight) {
		t.Errorf("serving run diverges across GOMAXPROCS:\n got %+v\nwant %+v", eight, one)
	}
}
