module hybridship

go 1.22
